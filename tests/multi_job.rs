//! Multiple training jobs sharing one fabric.
//!
//! Real clusters multiplex jobs: here an Allreduce "job" and an Alltoall
//! "job" run simultaneously on disjoint host subsets of the motivation
//! fabric, contending for the same spines. Themis state is per-QP, so
//! the jobs must not interfere with each other's NACK bookkeeping.

use themis::collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
use themis::collectives::{alltoall::alltoall, ring::ring_allreduce};
use themis::harness::oracle::{assert_conformant, OracleConfig};
use themis::harness::{build_cluster, ExperimentConfig, Scheme};
use themis::netsim::event::Event;
use themis::netsim::types::HostId;
use themis::simcore::time::Nanos;

/// Job A: 4-rank Allreduce on the even hosts; job B: 4-rank Alltoall on
/// the odd hosts. Returns (driver-completions, result).
fn run_two_jobs(
    scheme: Scheme,
    bytes: u64,
) -> (Vec<Option<Nanos>>, themis::harness::ExperimentResult) {
    let cfg = ExperimentConfig::motivation_small(scheme, 61);
    let mut cluster = build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
    let evens: Vec<HostId> = (0..4).map(|i| HostId(i * 2)).collect();
    let odds: Vec<HostId> = (0..4).map(|i| HostId(i * 2 + 1)).collect();
    let mut alloc = QpAllocator::new(19);
    let mut driver = Driver::new();
    let a = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &evens,
        ring_allreduce(4, bytes),
        &mut alloc,
    );
    let b = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &odds,
        alltoall(4, bytes),
        &mut alloc,
    );
    driver.add_instance(a);
    driver.add_instance(b);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(cfg.horizon);
    // Protocol-invariant audit on every job mix, every scheme.
    let mut oracle = OracleConfig::for_scheme(scheme);
    oracle.quiesced = cluster.world.now() < cfg.horizon;
    assert_conformant(&cluster, &oracle);
    let d: &Driver = cluster.world.get(cluster.driver).unwrap();
    let completions = d.completions();
    let r = themis::harness::ExperimentResult {
        scheme,
        tail_ct: d
            .tail_completion()
            .map(|t| t.since(d.started_at().unwrap())),
        group_cts: vec![],
        fabric: themis::netsim::trace::fabric_summary(&cluster.world, &cluster.all_switches()),
        themis: cluster.themis_stats(),
        nics: themis::harness::experiment::aggregate_nics(&cluster),
        events: cluster.world.engine.dispatched(),
        sim_end: cluster.world.now(),
        msg_latency_p50: None,
        msg_latency_p99: None,
        telemetry: cluster.telemetry.snapshot(),
    };
    (completions, r)
}

#[test]
fn concurrent_jobs_complete_under_themis_without_retransmissions() {
    let (completions, r) = run_two_jobs(Scheme::Themis, 2 << 20);
    assert_eq!(completions.len(), 2);
    assert!(completions.iter().all(Option::is_some), "both jobs finish");
    assert_eq!(r.nics.retx_packets, 0, "per-QP Themis state isolates jobs");
    assert!(r.themis.nacks_blocked > 0, "contention reorders both jobs");
    assert_eq!(r.fabric.total_drops(), 0);
}

#[test]
fn concurrent_jobs_faster_under_themis_than_unfiltered_spray() {
    let bytes = 2 << 20;
    let (_, themis) = run_two_jobs(Scheme::Themis, bytes);
    let (_, spray) = run_two_jobs(Scheme::SprayNoFilter, bytes);
    let (t, s) = (
        themis.tail_ct.expect("themis completes").as_secs_f64(),
        spray.tail_ct.expect("spray completes").as_secs_f64(),
    );
    assert!(t < s, "Themis {t:.6}s must beat unfiltered spray {s:.6}s");
    assert!(spray.nics.retx_packets > 0);
}

#[test]
fn jobs_complete_under_every_scheme() {
    for scheme in [
        Scheme::Ecmp,
        Scheme::AdaptiveRouting,
        Scheme::Flowlet,
        Scheme::Themis,
    ] {
        let (completions, r) = run_two_jobs(scheme, 1 << 20);
        assert!(
            completions.iter().all(Option::is_some),
            "{}: a job did not finish",
            scheme.label()
        );
        // Allreduce job moves 2*(n-1)*chunk per rank; Alltoall (n-1)*chunk.
        let chunk = (1u64 << 20) / 4;
        let expected = 4 * 2 * 3 * chunk + 4 * 3 * chunk;
        assert_eq!(r.nics.bytes_delivered, expected, "{}", scheme.label());
    }
}
