//! End-to-end NACK filtering and compensation under injected loss.
//!
//! These tests exercise the full pipeline — sender NIC → source ToR
//! (Themis-S) → spines → destination ToR (Themis-D) → receiver NIC —
//! with deterministic targeted drops, checking that:
//!
//! * invalid NACKs (pure reordering) are blocked and cause no
//!   retransmissions;
//! * a real single loss is recovered via a compensated NACK long before
//!   the RTO;
//! * a double loss produces a *valid* NACK that is forwarded;
//! * the no-compensation ablation falls back to the RTO.

use themis::harness::{build_cluster, ExperimentConfig, Scheme};
use themis::netsim::event::Event;
use themis::netsim::switch::Switch;
use themis::simcore::time::Nanos;

use collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
use collectives::schedule::{Schedule, Transfer};

/// Run a single cross-rack message under `scheme`, dropping the listed
/// PSNs at the destination ToR. Returns (completion µs, result bundle).
fn run_with_drops(
    scheme: Scheme,
    bytes: u64,
    drop_psns: &[u32],
) -> (Option<f64>, themis::harness::ExperimentResult) {
    let cfg = ExperimentConfig::motivation_small(scheme, 42);
    let mut cluster = build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
    let src = cluster.hosts[0];
    let dst = cluster.hosts[cfg.fabric.hosts_per_leaf]; // cross-rack
    let schedule = Schedule {
        name: "p2p",
        n_ranks: 2,
        transfers: vec![Transfer {
            src: 0,
            dst: 1,
            bytes,
            deps: vec![],
        }],
    };
    let mut alloc = QpAllocator::new(7);
    let mut driver = Driver::new();
    let spec = setup_collective(
        &mut cluster.world,
        cluster.driver,
        &[src, dst],
        schedule,
        &mut alloc,
    );
    let qp = spec.qp_of_transfer[0];
    driver.add_instance(spec);
    // Drops at the destination ToR: the packet vanishes after the spine.
    let dst_tor = cluster.leaves[1];
    {
        let sw = cluster.world.get_mut::<Switch>(dst_tor).expect("dst ToR");
        for &psn in drop_psns {
            sw.inject_targeted_drop(qp, psn);
        }
    }
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(cfg.horizon);

    let driver: &Driver = cluster.world.get(cluster.driver).expect("driver");
    let ct = driver.tail_completion().map(|t| {
        t.since(driver.started_at().unwrap_or(Nanos::ZERO))
            .as_micros_f64()
    });
    let result = themis::harness::ExperimentResult {
        scheme,
        tail_ct: None,
        group_cts: vec![],
        fabric: themis::netsim::trace::fabric_summary(&cluster.world, &cluster.all_switches()),
        themis: cluster.themis_stats(),
        nics: themis::harness::experiment::aggregate_nics(&cluster),
        events: cluster.world.engine.dispatched(),
        sim_end: cluster.world.now(),
        msg_latency_p50: None,
        msg_latency_p99: None,
        telemetry: cluster.telemetry.snapshot(),
    };
    (ct, result)
}

#[test]
fn no_loss_no_retransmissions_under_themis() {
    let (ct, r) = run_with_drops(Scheme::Themis, 8 << 20, &[]);
    assert!(ct.is_some());
    assert_eq!(r.nics.retx_packets, 0);
    assert!(
        r.themis.nacks_blocked > 0,
        "reordering produces blocked NACKs"
    );
    assert_eq!(r.themis.nacks_forwarded_valid, 0);
    assert_eq!(r.themis.compensations, 0);
    assert_eq!(r.nics.rto_fires, 0);
}

#[test]
fn single_loss_recovered_by_compensation_before_rto() {
    // Drop PSN 5000 (near the end of the 5592-packet message) at the
    // destination ToR. The first NACK's trigger is (almost surely) the
    // opposite-path packet 5001 -> blocked; the next same-path packet
    // 5002 proves the loss -> compensated NACK -> immediate retransmit.
    let (ct, r) = run_with_drops(Scheme::Themis, 8 << 20, &[5000]);
    assert!(ct.is_some(), "flow must complete");
    assert!(
        r.themis.compensations >= 1,
        "compensation must recover the loss: {:?}",
        r.themis
    );
    assert_eq!(r.nics.rto_fires, 0, "no RTO needed");
    assert_eq!(r.nics.retx_packets, 1, "exactly the lost packet resent");
    // Completion far faster than the 1 ms RTO would allow: the loss
    // happens ~625 us in, so RTO recovery could not finish before
    // ~1.6 ms. Compensation keeps it near the no-loss time.
    let transfer_us = (8 << 20) as f64 * 8.0 / 100e9 * 1e6; // ~671 us
    assert!(
        ct.unwrap() < transfer_us + 500.0,
        "ct {} should be near the no-loss time {}",
        ct.unwrap(),
        transfer_us
    );
}

#[test]
fn double_loss_forwards_a_valid_nack() {
    // Both 1000 and 1001 dropped: the first OOO arrival beyond the hole
    // is 1002, same path as 1000 -> Eq. 3 holds -> the NACK is valid and
    // must pass through to the sender.
    let (ct, r) = run_with_drops(Scheme::Themis, 8 << 20, &[5000, 5001]);
    assert!(ct.is_some());
    assert!(
        r.themis.nacks_forwarded_valid >= 1,
        "expected a valid NACK: {:?}",
        r.themis
    );
    assert!(r.nics.retx_packets >= 2, "both losses retransmitted");
    assert_eq!(r.nics.rto_fires, 0);
}

#[test]
fn without_compensation_single_loss_waits_for_rto() {
    let (ct, r) = run_with_drops(Scheme::ThemisNoCompensation, 8 << 20, &[5000]);
    assert!(ct.is_some(), "RTO must eventually recover the flow");
    assert!(
        r.nics.rto_fires >= 1,
        "blocked NACK without compensation leaves only the RTO: {:?}",
        r.nics
    );
    // And compensation (when enabled) is what saves ~1 ms:
    let (ct_comp, _) = run_with_drops(Scheme::Themis, 8 << 20, &[5000]);
    assert!(
        ct_comp.unwrap() + 500.0 < ct.unwrap(),
        "compensation ({:?}us) must beat RTO recovery ({:?}us)",
        ct_comp,
        ct
    );
}

#[test]
fn unfiltered_spray_retransmits_spuriously_with_no_loss() {
    let (ct, r) = run_with_drops(Scheme::SprayNoFilter, 8 << 20, &[]);
    assert!(ct.is_some());
    assert!(r.nics.retx_packets > 0, "spurious retransmissions expected");
    assert!(r.nics.nacks_received > 0);
    // Every retransmission is spurious: the receiver counts them as dups.
    assert!(r.nics.dup_packets > 0);
}

#[test]
fn ecmp_single_loss_recovers_via_plain_nack() {
    // Without spraying the OOO arrival after a drop IS caused by the
    // loss; commodity NIC-SR handles it natively (no Themis involved).
    let (ct, r) = run_with_drops(Scheme::Ecmp, 8 << 20, &[5000]);
    assert!(ct.is_some());
    assert_eq!(r.nics.retx_packets, 1);
    assert_eq!(r.nics.rto_fires, 0);
    assert_eq!(r.themis.nacks_blocked, 0, "no Themis in the path");
}
