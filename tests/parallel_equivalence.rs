//! Serial vs sharded engine equivalence.
//!
//! The sharded parallel engine (conservative time windows, canonical
//! `(at, seq, lane)` dispatch order) must be **bit-identical** to the
//! serial engine: same completion times, same counters, same event-ring
//! contents, same per-cause drop log, same oracle verdicts — for any
//! seed, fault plan, traffic mix, and shard count. These tests compare
//! the *serialized telemetry JSON* of whole runs, which covers every
//! counter, gauge, histogram bin, and ring entry in one comparison.

use simcore::rng::Xoshiro256;
use simcore::time::{Nanos, TimeDelta};
use themis::harness::fig1::{run_fig1_sharded, Fig1Transport};
use themis::harness::oracle::{self, OracleConfig};
use themis::harness::{
    expected_delivered_bytes, planned_transfers, run_collective_with_faults, run_fat_tree_rings,
    Collective, ExperimentConfig, ExperimentResult, FaultPlan, FaultSpace, Scheme,
};
use themis::netsim::fat_tree::FatTreeConfig;
use themis::rnic::NicConfig;

/// Serialize one run's telemetry as the versioned JSON document, with
/// the one intentionally-divergent line — the `run.shards`
/// execution-config echo — removed. Everything the simulation *computed*
/// must still match byte-for-byte.
fn telemetry_json(label: &str, r: &ExperimentResult) -> String {
    let mut report = telemetry::Report::new();
    report.add_run(label, r.telemetry.clone());
    let json = report.to_json();
    json.lines()
        .filter(|l| !l.contains("\"run.shards\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Run the same (config, collective, plan) cell serially and with
/// `shards` shards; assert byte-identical telemetry and equal metrics
/// and oracle verdicts.
fn assert_equivalent(
    mut cfg: ExperimentConfig,
    collective: Collective,
    bytes: u64,
    plan: &FaultPlan,
    shards: usize,
    label: &str,
) {
    cfg.shards = 1;
    let (serial, serial_cluster) = run_collective_with_faults(&cfg, collective, bytes, plan);
    cfg.shards = shards;
    let (sharded, sharded_cluster) = run_collective_with_faults(&cfg, collective, bytes, plan);

    assert_eq!(serial.tail_ct, sharded.tail_ct, "{label}: tail_ct");
    assert_eq!(serial.group_cts, sharded.group_cts, "{label}: group_cts");
    assert_eq!(serial.events, sharded.events, "{label}: dispatch count");
    assert_eq!(serial.sim_end, sharded.sim_end, "{label}: sim end");

    // The full telemetry document: every counter (including the
    // per-cause `fabric.drops.*` log), histogram, and the merged event
    // ring must serialize to the same bytes.
    let a = telemetry_json(label, &serial);
    let b = telemetry_json(label, &sharded);
    assert_eq!(a, b, "{label}: telemetry JSON diverged");

    // The oracle must reach the same verdicts on both clusters.
    let judge = OracleConfig::for_scheme(cfg.scheme)
        .with_expected_bytes(expected_delivered_bytes(&cfg, collective, bytes));
    let vs: Vec<String> = oracle::check(&serial_cluster, &judge)
        .iter()
        .map(|v| v.to_string())
        .collect();
    let vp: Vec<String> = oracle::check(&sharded_cluster, &judge)
        .iter()
        .map(|v| v.to_string())
        .collect();
    assert_eq!(vs, vp, "{label}: oracle verdicts diverged");
}

/// A deterministic fault plan for the motivation fabric, derived the
/// same way the fuzzer derives case plans.
fn sampled_plan(cfg: &ExperimentConfig, collective: Collective, bytes: u64, k: u64) -> FaultPlan {
    let mut rng = Xoshiro256::substream(cfg.seed, k);
    let space = FaultSpace {
        n_leaves: cfg.fabric.n_leaves,
        n_uplinks: cfg.fabric.n_spines,
        horizon: Nanos::from_micros(500),
        max_episodes: 4,
        targets: planned_transfers(cfg, collective, bytes)
            .into_iter()
            .map(|(qp, n_psn)| (qp.0, n_psn))
            .collect(),
    };
    FaultPlan::sample(&mut rng, &space)
}

/// Fig 1 fabric (motivation, 8 hosts, 2 paths): eight seeds across three
/// schemes, shards = 2.
#[test]
fn motivation_fabric_eight_seeds_bit_identical() {
    let cells = [
        (Scheme::RandomSpray, 1u64),
        (Scheme::RandomSpray, 2),
        (Scheme::Themis, 3),
        (Scheme::Themis, 4),
        (Scheme::Ecmp, 5),
        (Scheme::AdaptiveRouting, 6),
        (Scheme::SprayNoFilter, 7),
        (Scheme::Themis, 8),
    ];
    for (scheme, seed) in cells {
        let cfg = ExperimentConfig::motivation_small(scheme, seed);
        assert_equivalent(
            cfg,
            Collective::RingOnce,
            256 << 10,
            &FaultPlan::none(),
            2,
            &format!("motivation/{}/seed{}", scheme.label(), seed),
        );
    }
}

/// Uneven partition: 3 shards over 4 leaves (shard 0 gets two leaves).
#[test]
fn uneven_shard_count_bit_identical() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 21);
    assert_equivalent(
        cfg,
        Collective::RingOnce,
        256 << 10,
        &FaultPlan::none(),
        3,
        "motivation/uneven-3-shards",
    );
}

/// Shard counts beyond the leaf count clamp back to a valid partition.
#[test]
fn oversubscribed_shard_count_bit_identical() {
    let cfg = ExperimentConfig::motivation_small(Scheme::RandomSpray, 22);
    assert_equivalent(
        cfg,
        Collective::RingOnce,
        128 << 10,
        &FaultPlan::none(),
        64,
        "motivation/oversubscribed-shards",
    );
}

/// Fault plans (targeted drops, link failures, control loss) land
/// identically: the drop log, compensations, and retransmissions all
/// replay bit-identically under sharding.
#[test]
fn fault_plans_bit_identical() {
    for (k, collective) in [(1u64, Collective::RingOnce), (7, Collective::Incast)] {
        let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 0x5EED ^ k);
        let bytes = 192 << 10;
        let mut plan = sampled_plan(&cfg, collective, bytes, k);
        let mut tries = k + 100;
        while plan.events.is_empty() {
            // Resample until the plan is non-trivial (same path for both
            // engines, so equivalence still holds regardless).
            plan = sampled_plan(&cfg, collective, bytes, tries);
            tries += 1;
        }
        assert_equivalent(
            cfg,
            collective,
            bytes,
            &plan,
            2,
            &format!("motivation/fault-plan-{k}"),
        );
    }
}

/// Fig 5 fabric (16×16 leaf-spine at 400 Gbps, 256 hosts): two seeds
/// with a tiny buffer keep the debug-mode run fast while exercising the
/// full-scale partition (16 leaves over 4 shards).
#[test]
fn paper_fabric_bit_identical() {
    for seed in [11u64, 12] {
        let cfg = ExperimentConfig::paper_eval(Scheme::Themis, 55, 50, seed);
        assert_equivalent(
            cfg,
            Collective::RingOnce,
            64 << 10,
            &FaultPlan::none(),
            4,
            &format!("paper/seed{seed}"),
        );
    }
}

/// The 10x fabric (k=16 fat-tree, 1024 hosts, pod-aligned partition with
/// the per-pair lookahead matrix): serial vs sharded runs must stay
/// bit-identical across seeds and shard counts. Two inter-pod rings keep
/// the debug-mode run fast while every ring crosses the core layer and
/// every shard boundary.
#[test]
fn x10_fabric_bit_identical() {
    let mut fabric = FatTreeConfig::small(16);
    let nic = NicConfig::nic_sr(fabric.host_link.bandwidth_bps);
    let horizon = Nanos::from_secs(2);
    for seed in [31u64, 32] {
        fabric.seed = seed;
        let (serial, _) =
            run_fat_tree_rings(&fabric, nic, Scheme::Themis, seed, 1, 2, 32 << 10, horizon);
        assert!(serial.tail_ct.is_some(), "x10 rings must complete");
        for shards in [2usize, 8] {
            let label = format!("x10/seed{seed}/shards{shards}");
            let (sharded, _) = run_fat_tree_rings(
                &fabric,
                nic,
                Scheme::Themis,
                seed,
                shards,
                2,
                32 << 10,
                horizon,
            );
            assert_eq!(serial.tail_ct, sharded.tail_ct, "{label}: tail_ct");
            assert_eq!(serial.group_cts, sharded.group_cts, "{label}: group_cts");
            assert_eq!(serial.events, sharded.events, "{label}: dispatch count");
            assert_eq!(serial.sim_end, sharded.sim_end, "{label}: sim end");
            assert_eq!(
                telemetry_json(&label, &serial),
                telemetry_json(&label, &sharded),
                "{label}: telemetry JSON diverged"
            );
        }
    }
}

/// The Fig 1 pipeline end-to-end (send-rate traces, per-flow goodput,
/// telemetry snapshot) under sharding.
#[test]
fn fig1_pipeline_bit_identical() {
    let bin = TimeDelta::from_micros(50);
    let serial = run_fig1_sharded(Fig1Transport::NicSr, 1 << 20, bin, 42, 1);
    let sharded = run_fig1_sharded(Fig1Transport::NicSr, 1 << 20, bin, 42, 2);
    assert_eq!(serial.completed, sharded.completed);
    assert_eq!(serial.data_packets, sharded.data_packets);
    assert_eq!(serial.retx_packets, sharded.retx_packets);
    assert_eq!(serial.retx_ratio_series, sharded.retx_ratio_series);
    assert_eq!(serial.rate_series, sharded.rate_series);
    let mut a = telemetry::Report::new();
    a.add_run("fig1", serial.telemetry.clone());
    let mut b = telemetry::Report::new();
    b.add_run("fig1", sharded.telemetry.clone());
    assert_eq!(a.to_json(), b.to_json(), "fig1 telemetry JSON diverged");
}
