//! Property test of the conservative-window lookahead-safety invariant.
//!
//! The sharded engine advances all shards through windows `[M, M+λ)` and
//! only exchanges cross-shard events at window boundaries. Soundness
//! rests on one invariant: **no cross-shard event may be scheduled below
//! the receiving shard's window barrier** — equivalently, every
//! cross-shard edge must have delivery latency ≥ the declared lookahead
//! λ. The engine checks this on every inter-shard delivery.
//!
//! Two directions, over seeded random topologies and traffic:
//!
//! * **Honest λ** (≤ the true minimum cross-shard latency): the checker
//!   must stay silent and the run must match the serial engine exactly.
//! * **Lying λ** (> the true minimum): the checker must fire. The
//!   offending seed-event list is then shrunk with the shared `ddmin`
//!   helper to a minimal reproducer, which must still fire the checker.

use std::sync::{Arc, Mutex};

use netsim::event::Event;
use netsim::packet::Packet;
use netsim::types::{HostId, NodeId, PortId, QpId};
use netsim::world::{Ctx, Entity, LookaheadViolation, ShardPlan, World};
use simcore::rng::Xoshiro256;
use simcore::time::{Nanos, TimeDelta};
use themis::harness::ddmin;

/// True minimum latency of any send in the random workload (1 µs).
const MIN_LATENCY_NS: u64 = 1_000;
/// Random extra latency on top of the minimum (< 2 µs).
const JITTER_NS: u64 = 2_000;

/// Forwards each received packet to a pseudo-random peer with a
/// pseudo-random latency in `[MIN_LATENCY_NS, MIN_LATENCY_NS + JITTER_NS)`,
/// up to a forwarding budget. Fully deterministic per (seed, index).
struct Relay {
    peers: Vec<NodeId>,
    rng: Xoshiro256,
    forwards_left: u32,
    received: u64,
}

impl Entity for Relay {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        if let Event::Packet { pkt, .. } = ev {
            self.received += 1;
            if self.forwards_left > 0 {
                self.forwards_left -= 1;
                let peer = self.peers[self.rng.next_below(self.peers.len() as u64) as usize];
                let lat = MIN_LATENCY_NS + self.rng.next_below(JITTER_NS);
                ctx.send_packet(peer, PortId(0), pkt, TimeDelta::from_nanos(lat));
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A seed event: inject a packet at `at_ns` into entity `target`.
type SeedEvent = (u64, usize);

/// Derive a random scenario from `seed`: entity count, shard count, and
/// a seed-event list.
fn derive_scenario(seed: u64) -> (usize, usize, Vec<SeedEvent>) {
    let mut rng = Xoshiro256::seeded(seed);
    let n_entities = rng.next_range(3, 8) as usize;
    let n_shards = rng.next_range(2, (n_entities as u64).min(4)) as usize;
    let n_events = rng.next_range(1, 7) as usize;
    let events = (0..n_events)
        .map(|_| {
            (
                rng.next_below(10_000),
                rng.next_below(n_entities as u64) as usize,
            )
        })
        .collect();
    (n_entities, n_shards, events)
}

/// Build the scenario world. `shards` = None for a serial build;
/// otherwise the shard count, declared lookahead, and the violation log
/// (recording mode: the run aborts cleanly instead of panicking).
fn build(
    seed: u64,
    n_entities: usize,
    events: &[SeedEvent],
    shards: Option<(usize, u64)>,
) -> (World, Vec<NodeId>, Arc<Mutex<Vec<LookaheadViolation>>>) {
    let mut w = World::new();
    let ids: Vec<NodeId> = (0..n_entities).map(|_| w.reserve()).collect();
    for (i, &id) in ids.iter().enumerate() {
        let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
        w.install(
            id,
            Box::new(Relay {
                peers,
                rng: Xoshiro256::substream(seed, 1_000 + i as u64),
                forwards_left: 20,
                received: 0,
            }),
        );
    }
    for &(at_ns, target) in events {
        let pkt = Packet::cnp(QpId(0), HostId(0), HostId(target as u32), 1);
        w.seed_event(
            Nanos(at_ns),
            ids[target],
            Event::Packet {
                pkt,
                in_port: PortId(0),
            },
        );
    }
    let log = Arc::new(Mutex::new(Vec::new()));
    if let Some((n_shards, lookahead_ns)) = shards {
        let owner: Vec<u16> = (0..n_entities).map(|i| (i % n_shards) as u16).collect();
        let mut plan = ShardPlan::new(owner, n_shards, TimeDelta::from_nanos(lookahead_ns));
        plan.violations = Some(log.clone());
        w.set_shard_plan(plan);
    }
    (w, ids, log)
}

fn received_counts(w: &World, ids: &[NodeId]) -> Vec<u64> {
    ids.iter()
        .map(|&id| w.get::<Relay>(id).unwrap().received)
        .collect()
}

/// Honest lookahead: the checker stays silent and every shard count
/// reproduces the serial run exactly, across 24 random scenarios.
#[test]
fn honest_lookahead_is_silent_and_serial_equal() {
    for seed in 0..24u64 {
        let (n, shards, events) = derive_scenario(seed);
        let (mut serial, ids, _) = build(seed, n, &events, None);
        serial.run();

        let (mut sharded, ids_p, log) = build(seed, n, &events, Some((shards, MIN_LATENCY_NS)));
        sharded.run();

        assert!(
            log.lock().unwrap().is_empty(),
            "seed {seed}: honest lookahead must never trip the checker"
        );
        assert_eq!(sharded.now(), serial.now(), "seed {seed}: clocks diverged");
        assert_eq!(
            sharded.engine.dispatched(),
            serial.engine.dispatched(),
            "seed {seed}: dispatch counts diverged"
        );
        assert_eq!(
            received_counts(&sharded, &ids_p),
            received_counts(&serial, &ids),
            "seed {seed}: entity state diverged"
        );
    }
}

/// Lying lookahead: declaring λ above the true minimum cross-shard
/// latency must be caught, and `ddmin` shrinks the seed-event list to a
/// minimal reproducer that still fires the checker.
#[test]
fn lying_lookahead_is_caught_and_shrinks() {
    // λ = 5 µs but true minimum latency is 1 µs: unsound by 4 µs.
    const LYING_NS: u64 = 5_000;
    let mut caught = 0;
    for seed in 0..24u64 {
        let (n, shards, events) = derive_scenario(seed);
        let fails = |candidate: &[SeedEvent]| {
            let (mut w, _, log) = build(seed, n, candidate, Some((shards, LYING_NS)));
            w.run();
            let found = log.lock().unwrap();
            for v in found.iter() {
                assert!(
                    v.at_ns < v.window_end_ns,
                    "seed {seed}: recorded violation is not actually below the barrier"
                );
                assert_ne!(
                    v.from_shard, v.to_shard,
                    "seed {seed}: intra-shard delivery can never violate lookahead"
                );
            }
            !found.is_empty()
        };
        if !fails(&events) {
            // Workload never crossed shards below the lying barrier
            // (e.g. all forwards stayed intra-shard) — not a soundness
            // witness for this seed.
            continue;
        }
        caught += 1;
        let (minimal, runs) = ddmin(&events, fails);
        assert!(
            !minimal.is_empty(),
            "seed {seed}: a violation needs at least one seed event"
        );
        assert!(fails(&minimal), "seed {seed}: shrunk plan must still fail");
        assert!(
            runs >= minimal.len(),
            "seed {seed}: ddmin did less work than 1-minimality requires"
        );
        // 1-minimality: removing any single remaining event loses the
        // violation.
        for i in 0..minimal.len() {
            let mut without = minimal.clone();
            without.remove(i);
            assert!(
                !fails(&without),
                "seed {seed}: shrunk plan is not 1-minimal (event {i} removable)"
            );
        }
    }
    assert!(
        caught >= 12,
        "expected most scenarios to witness the lying lookahead, got {caught}/24"
    );
}
