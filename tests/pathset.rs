//! §6 pathset restriction, end to end.
//!
//! After a partial failure (say one spine of four), Themis need not fall
//! all the way back to ECMP: it can keep spraying over the surviving
//! power-of-two subset of paths. In direct-egress mode the subset maps
//! to concrete uplinks, so the failed spine receives no traffic at all,
//! while NACK filtering continues at the reduced modulus.

use themis::harness::{build_cluster, ExperimentConfig, Scheme};
use themis::netsim::event::Event;
use themis::netsim::port::LinkSpec;
use themis::netsim::switch::Switch;
use themis::netsim::topology::LeafSpineConfig;
use themis::simcore::time::Nanos;
use themis::themis_core::failure::apply_pathset_restriction;

use collectives::driver::{setup_collective, Driver, QpAllocator, START_TOKEN};
use collectives::ring::ring_once;

/// A 4-spine variant of the motivation fabric (8 hosts, 4 paths).
fn four_path_fabric() -> LeafSpineConfig {
    LeafSpineConfig {
        n_spines: 4,
        ..LeafSpineConfig::motivation()
    }
}

fn run_ring_with_pathset(pathset: Option<Vec<usize>>) -> themis::harness::Cluster {
    let fabric = four_path_fabric();
    let cfg = ExperimentConfig {
        nic: rnic::NicConfig::nic_sr(fabric.host_link.bandwidth_bps),
        fabric,
        scheme: Scheme::Themis,
        seed: 9,
        horizon: Nanos::from_secs(2),
        shards: themis::harness::shards_from_env(),
    };
    let mut cluster = build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
    if let Some(ps) = pathset {
        for &leaf in &cluster.leaves.clone() {
            let sw = cluster.world.get_mut::<Switch>(leaf).expect("leaf");
            assert!(apply_pathset_restriction(sw, Some(ps.clone())));
        }
    }
    // Two 4-host ring groups (evens and odds), as in Fig 1a.
    let groups = collectives::groups::all_groups(4, 2);
    let mut alloc = QpAllocator::new(3);
    let mut driver = Driver::new();
    for hosts in &groups {
        let spec = setup_collective(
            &mut cluster.world,
            cluster.driver,
            hosts,
            ring_once(hosts.len(), 2 << 20),
            &mut alloc,
        );
        driver.add_instance(spec);
    }
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(Nanos::from_secs(2));
    cluster
}

fn spine_data_rx(cluster: &themis::harness::Cluster) -> Vec<u64> {
    cluster
        .spines
        .iter()
        .map(|&s| cluster.world.get::<Switch>(s).unwrap().stats.rx_packets)
        .collect()
}

/// Bytes transmitted by each spine — data packets dominate this metric
/// (1564 B wire vs 64 B ACK/NACK/CNP), unlike raw packet counts where
/// per-packet ACK streams are as numerous as data.
fn spine_tx_bytes(cluster: &themis::harness::Cluster) -> Vec<u64> {
    cluster
        .spines
        .iter()
        .map(|&s| {
            let sw = cluster.world.get::<Switch>(s).unwrap();
            (0..sw.num_ports()).map(|p| sw.port(p).stats.tx_bytes).sum()
        })
        .collect()
}

#[test]
fn full_pathset_uses_every_spine() {
    let cluster = run_ring_with_pathset(None);
    let d: &Driver = cluster.world.get(cluster.driver).unwrap();
    assert!(d.all_complete());
    let rx = spine_data_rx(&cluster);
    assert!(rx.iter().all(|&r| r > 0), "all 4 spines used: {rx:?}");
}

#[test]
fn restricted_pathset_avoids_failed_spines_and_still_filters() {
    // Spines 2 and 3 "failed": restrict to {0, 1}.
    let cluster = run_ring_with_pathset(Some(vec![0, 1]));
    let d: &Driver = cluster.world.get(cluster.driver).unwrap();
    assert!(d.all_complete(), "traffic must complete on the subset");

    let rx = spine_data_rx(&cluster);
    assert!(rx[0] > 0 && rx[1] > 0, "surviving spines used: {rx:?}");
    // Only reverse-direction control traffic (whose ECMP hash is not
    // pathset-steered) may touch spines 2/3; sprayed data must not.
    // Control packets are numerous but tiny, so compare bytes.
    let bytes = spine_tx_bytes(&cluster);
    let total: u64 = bytes.iter().sum();
    assert!(
        (bytes[2] + bytes[3]) * 20 < total,
        "failed spines must carry no sprayed data: {bytes:?}"
    );

    // Spraying still reorders over 2 paths and filtering still works at
    // the reduced modulus.
    let agg = cluster.themis_stats();
    assert!(
        agg.nacks_blocked > 0,
        "filtering active at modulus 2: {agg:?}"
    );
    let nics = themis::harness::experiment::aggregate_nics(&cluster);
    assert_eq!(nics.retx_packets, 0, "no spurious retransmissions");
}

#[test]
fn single_path_subset_degenerates_to_in_order_delivery() {
    let cluster = run_ring_with_pathset(Some(vec![2]));
    let d: &Driver = cluster.world.get(cluster.driver).unwrap();
    assert!(d.all_complete());
    let nics = themis::harness::experiment::aggregate_nics(&cluster);
    assert_eq!(nics.ooo_packets, 0, "one path -> in order");
    assert_eq!(nics.retx_packets, 0);
    let bytes = spine_tx_bytes(&cluster);
    // All data on spine 2.
    assert!(bytes[2] > bytes[0] + bytes[1] + bytes[3], "{bytes:?}");
    let _ = LinkSpec::gbps(1, 1);
}
