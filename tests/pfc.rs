//! Hop-by-hop PFC: lossless operation under incast.
//!
//! RoCE deployments traditionally pair DCQCN with PFC so buffers never
//! overflow. These tests shrink switch buffers to force overflow under a
//! 4-to-1 Alltoall incast and verify: without PFC the fabric drops (and
//! NIC-SR recovers via genuine, valid NACKs); with PFC the fabric stays
//! lossless by pausing upstream.
//!
//! Alltoall cannot overload anything (each NIC self-throttles to line
//! rate), so the stress here is a true N-to-1 incast: three line-rate
//! senders converging on one receiver's last hop.

use themis::harness::oracle::{assert_conformant, OracleConfig};
use themis::harness::{ExperimentConfig, Scheme};
use themis::netsim::switch::PfcConfig;
use themis::netsim::topology::LeafSpineConfig;
use themis::simcore::time::Nanos;

fn tiny_buffer_fabric(pfc: bool) -> LeafSpineConfig {
    let buffer_bytes = 256 * 1024; // 256 KB shared — tight under incast
    LeafSpineConfig {
        buffer_bytes,
        pfc: pfc.then(|| PfcConfig::for_buffer(buffer_bytes)),
        // ECN stays on: DCQCN eventually tames the incast, but the
        // transient overflows the tiny buffer first (without PFC).
        ecn: true,
        ..LeafSpineConfig::motivation()
    }
}

fn run_incast(pfc: bool) -> themis::harness::ExperimentResult {
    let fabric = tiny_buffer_fabric(pfc);
    let cfg = ExperimentConfig {
        nic: rnic::NicConfig::nic_sr(fabric.host_link.bandwidth_bps),
        fabric,
        scheme: Scheme::Themis,
        seed: 77,
        horizon: Nanos::from_secs(2),
        shards: themis::harness::shards_from_env(),
    };
    let (r, cluster) =
        themis::harness::run_collective_on(&cfg, themis::harness::Collective::Incast, 8 << 20);
    // Protocol-invariant audit: buffer-overflow drops (without PFC) must
    // still conserve packets and recover every loss.
    let mut oracle = OracleConfig::for_scheme(Scheme::Themis).without_rto_bound();
    oracle.quiesced = r.sim_end < cfg.horizon;
    assert_conformant(&cluster, &oracle);
    r
}

#[test]
fn without_pfc_incast_overflows_and_recovers_by_retransmission() {
    let r = run_incast(false);
    assert!(r.all_messages_completed(), "losses must be recovered");
    assert!(
        r.fabric.drops_buffer > 0,
        "256 KB buffers must overflow under 3-to-1 incast: {:?}",
        r.fabric
    );
    assert!(
        r.nics.retx_packets > 0,
        "real losses need real retransmissions"
    );
}

#[test]
fn with_pfc_incast_is_lossless() {
    let r = run_incast(true);
    assert!(r.all_messages_completed());
    assert_eq!(
        r.fabric.drops_buffer, 0,
        "PFC must keep the fabric lossless: {:?}",
        r.fabric
    );
    // Pauses actually happened (the test is not vacuous).
    let lossy = run_incast(false);
    assert!(
        lossy.fabric.drops_buffer > 0,
        "sanity: the same load overflows without PFC"
    );
}

#[test]
fn pfc_incast_keeps_retransmission_noise_negligible_under_themis() {
    // Lossless fabric + NACK filtering: no RTO ever fires, and
    // retransmissions stay negligible. They cannot be pinned to zero:
    // once a single spurious compensated NACK slips through (its BePSN
    // queue entry was consumed by an earlier scan, hiding it from the
    // suppression check), the *retransmitted* packet travels out of PSN
    // order on its path, so later same-parity packets can satisfy Eq. 3
    // and generate further "valid-looking" NACKs — a cascade inherent to
    // the paper's FIFO-per-path assumption, absorbed by the receiver's
    // duplicate handling. Bound the noise instead: well under 1% of the
    // ~17k data packets.
    let r = run_incast(true);
    assert_eq!(r.nics.rto_fires, 0);
    let total = r.nics.data_packets + r.nics.retx_packets;
    assert!(
        r.nics.retx_packets * 100 < total,
        "retransmission noise must stay under 1%: {} of {}",
        r.nics.retx_packets,
        total
    );
}

#[test]
fn pfc_and_themis_compose_on_ring_traffic() {
    // Ring traffic over a lossless fabric: spraying still reorders (the
    // paths carry unequal transient load), Themis blocks every NACK, and
    // nothing is ever retransmitted.
    let fabric = LeafSpineConfig {
        pfc: Some(PfcConfig::for_buffer(64 * 1024 * 1024)),
        ..LeafSpineConfig::motivation()
    };
    let cfg = ExperimentConfig {
        nic: rnic::NicConfig::nic_sr(fabric.host_link.bandwidth_bps),
        fabric,
        scheme: Scheme::Themis,
        seed: 77,
        horizon: Nanos::from_secs(2),
        shards: themis::harness::shards_from_env(),
    };
    let (r, cluster) =
        themis::harness::run_collective_on(&cfg, themis::harness::Collective::RingOnce, 4 << 20);
    assert!(r.all_messages_completed());
    let mut oracle = OracleConfig::for_scheme(Scheme::Themis);
    oracle.quiesced = r.sim_end < cfg.horizon;
    assert_conformant(&cluster, &oracle);
    assert_eq!(r.fabric.drops_buffer, 0, "lossless");
    assert!(
        r.themis.nacks_blocked > 0,
        "spraying reorders: {:?}",
        r.themis
    );
    assert_eq!(
        r.themis.nacks_forwarded_valid, 0,
        "no loss -> no valid NACK"
    );
    assert_eq!(r.nics.retx_packets, 0);
}
