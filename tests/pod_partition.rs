//! Structural properties of the pod-aligned fat-tree partition.
//!
//! These tests never run a simulation: they build the sharded cluster
//! and check the partition and its per-pair lookahead matrix directly.
//!
//! * **Pod-closed** — a pod's edges, aggregation switches and hosts all
//!   live on one shard, so intra-pod links never cross shards.
//! * **Coverage** — the owner vector assigns every entity slot (and the
//!   driver slot) to a valid shard, and no shard is empty.
//! * **Sound lookahead** — the λ matrix lower-bounds the latency of
//!   every cross-shard physical link and never exceeds the control-plane
//!   latency on driver↔NIC pairs (the engine would otherwise flag a
//!   lookahead violation at runtime).

use themis::harness::{build_fat_tree_cluster_sharded, Cluster, Scheme};
use themis::netsim::fat_tree::FatTreeConfig;
use themis::netsim::switch::Switch;
use themis::netsim::types::NodeId;
use themis::netsim::world::CONTROL_PLANE_LATENCY;
use themis::rnic::{Nic, NicConfig};

fn build(k: usize, n_shards: usize) -> Cluster {
    let fabric = FatTreeConfig::small(k);
    let nic = NicConfig::nic_sr(fabric.host_link.bandwidth_bps);
    build_fat_tree_cluster_sharded(&fabric, nic, Scheme::Themis, n_shards)
}

fn check_partition(k: usize, n_shards: usize) {
    let cluster = build(k, n_shards);
    let plan = cluster
        .world
        .shard_plan()
        .expect("sharded build installs a plan");
    let owner = &plan.owner;
    let n = plan.n_shards;
    let m = k / 2;

    // Coverage: every slot (switches, NICs, the reserved driver) has a
    // valid owner and every shard owns at least one entity.
    assert_eq!(
        owner.len(),
        cluster.world.len(),
        "{k}/{n_shards}: owner len"
    );
    assert!(owner.iter().all(|&s| (s as usize) < n));
    let mut populated = vec![false; n];
    for &s in owner.iter() {
        populated[s as usize] = true;
    }
    assert!(
        populated.iter().all(|&p| p),
        "{k}/{n_shards}: every shard must own entities"
    );
    assert_eq!(owner[cluster.driver.index()], 0, "driver lives on shard 0");

    // Pod-closed: `leaves` is pod-major (m edges per pod) and `spines`
    // starts with the k·m aggregation switches in the same order; each
    // pod's switches must share one shard.
    assert_eq!(cluster.leaves.len(), k * m);
    for p in 0..k {
        let pod_shard = owner[cluster.leaves[p * m].index()];
        for &e in &cluster.leaves[p * m..(p + 1) * m] {
            assert_eq!(owner[e.index()], pod_shard, "{k}/{n_shards}: pod {p} edge");
        }
        for &a in &cluster.spines[p * m..(p + 1) * m] {
            assert_eq!(owner[a.index()], pod_shard, "{k}/{n_shards}: pod {p} agg");
        }
    }
    // Hosts follow their ToR, so host links never cross shards.
    for &h in &cluster.hosts {
        let nic: &Nic = cluster.world.get(NodeId(h.0)).expect("NIC installed");
        let tor = nic.uplink().peer;
        assert_eq!(
            owner[h.0 as usize],
            owner[tor.index()],
            "{k}/{n_shards}: host {h:?} on its ToR's shard"
        );
    }

    // Sound lookahead: λ[i][j] must not exceed the latency of any
    // physical link crossing i → j, nor the control-plane latency on
    // driver↔NIC pairs.
    let lam = plan
        .lookahead_matrix()
        .expect("fat-tree builder installs the per-pair matrix");
    assert_eq!(lam.len(), n * n);
    let entry = |a: u16, b: u16| lam[a as usize * n + b as usize];
    for &sw_id in cluster.leaves.iter().chain(cluster.spines.iter()) {
        let sw: &Switch = cluster.world.get(sw_id).expect("switch installed");
        let me = owner[sw_id.index()];
        for i in 0..sw.num_ports() {
            let port = sw.port(i);
            let peer = owner[port.peer.index()];
            if me != peer {
                assert!(
                    entry(me, peer) <= port.link.latency.as_nanos(),
                    "{k}/{n_shards}: λ[{me}][{peer}] must lower-bound a crossing link"
                );
            }
        }
    }
    let cpl = CONTROL_PLANE_LATENCY.as_nanos();
    let driver_shard = owner[cluster.driver.index()];
    for &h in &cluster.hosts {
        let host_shard = owner[h.0 as usize];
        if host_shard != driver_shard {
            assert!(entry(host_shard, driver_shard) <= cpl);
            assert!(entry(driver_shard, host_shard) <= cpl);
        }
    }
    // Positivity: a zero entry would let a shard's window never advance.
    assert!(lam.iter().all(|&l| l > 0));
}

#[test]
fn k8_partitions_are_pod_closed_and_sound() {
    for n_shards in [2usize, 4, 8] {
        check_partition(8, n_shards);
    }
}

#[test]
fn k16_partitions_are_pod_closed_and_sound() {
    for n_shards in [2usize, 5, 16] {
        check_partition(16, n_shards);
    }
}

#[test]
fn serial_build_has_no_plan() {
    let cluster = build(8, 1);
    assert!(cluster.world.shard_plan().is_none());
}
