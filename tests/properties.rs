//! Randomized property tests over the core invariants.
//!
//! Formerly proptest-based; now driven by seeded `simcore::rng::Xoshiro256`
//! loops so the workspace builds with no external crates (and failures
//! reproduce exactly from the printed case parameters).
//!
//! * The NIC-SR receiver delivers every message exactly once for *any*
//!   arrival permutation and duplication pattern.
//! * Eq. 3 on truncated PSNs agrees with the full-width check for any
//!   valid path count.
//! * The ring PSN queue finds the same tPSN a reference model does.
//! * `extend24` round-trips any in-window wire PSN.
//! * The PathMap moves any flow by exactly the requested delta.

use rnic::config::TransportMode;
use rnic::psn::{extend24, wire_psn};
use rnic::qp::RecvQp;
use simcore::rng::Xoshiro256;
use simcore::time::{Nanos, TimeDelta};
use themis::netsim::hash::{ecmp_hash, FiveTuple};
use themis::netsim::types::{HostId, QpId};
use themis::themis_core::pathmap::PathMap;
use themis::themis_core::policy::{nack_valid, nack_valid_truncated};
use themis::themis_core::psn_queue::PsnQueue;

const CASES: u64 = 300;

fn recv_qp() -> RecvQp {
    RecvQp::new(
        QpId(1),
        HostId(1),
        HostId(0),
        4000,
        TransportMode::SelectiveRepeat,
        1,
        TimeDelta::from_micros(50),
    )
}

/// Any permutation of a packet stream (with an optional duplicated
/// suffix) is fully reassembled: the ePSN ends one past the last
/// packet and delivered bytes equal the unique payload.
#[test]
fn receiver_reassembles_any_permutation() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::substream(0x9E1, case);
        let n = 1 + rng.next_index(59);
        let dups = rng.next_index(10);
        let mut order: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut order);
        // Append duplicates of random packets.
        let mut stream = order.clone();
        for _ in 0..dups {
            stream.push(order[rng.next_index(order.len())]);
        }
        let mut r = recv_qp();
        let mut delivered_tags = Vec::new();
        for (i, &psn) in stream.iter().enumerate() {
            let last = psn == (n as u32 - 1);
            let out = r.on_data(psn, 7, last, 1000, false, Nanos(i as u64));
            delivered_tags.extend(out.delivered);
        }
        assert_eq!(r.epsn(), n as u64, "case {case}: n={n} dups={dups}");
        assert_eq!(delivered_tags, vec![7u64], "case {case}");
        assert_eq!(r.stats.bytes_delivered, n as u64 * 1000, "case {case}");
    }
}

/// The at-most-one-NACK-per-ePSN rule holds for any stream.
#[test]
fn at_most_one_nack_per_epsn() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::substream(0x9E2, case);
        let n = 2 + rng.next_index(58);
        let mut order: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut order);
        let mut r = recv_qp();
        let mut nacks_per_epsn = std::collections::HashMap::new();
        for (i, &psn) in order.iter().enumerate() {
            let epsn_before = r.epsn();
            let out = r.on_data(psn, 0, false, 100, false, Nanos(i as u64));
            for resp in &out.responses {
                if resp.is_nack() {
                    *nacks_per_epsn.entry(epsn_before).or_insert(0u32) += 1;
                }
            }
        }
        for (epsn, count) in nacks_per_epsn {
            assert!(count <= 1, "case {case}: ePSN {epsn} NACKed {count} times");
        }
    }
}

/// Truncated Eq. 3 agrees with the full-width version for every
/// power-of-two path count and any PSN pair.
#[test]
fn truncated_validity_matches_full() {
    let mut rng = Xoshiro256::seeded(0x9E3);
    for case in 0..2000 {
        let tpsn = rng.next_below(1 << 24) as u32;
        let epsn = rng.next_below(1 << 24) as u32;
        let bits = rng.next_below(9) as u32;
        let n = 1usize << bits;
        assert_eq!(
            nack_valid_truncated((tpsn & 0xFF) as u8, epsn, n),
            nack_valid(tpsn, epsn, n),
            "case {case}: tpsn={tpsn} epsn={epsn} n={n}"
        );
    }
}

/// The ring queue's destructive scan returns the same tPSN as a
/// reference model (first element serially greater than ePSN) and
/// consumes exactly the elements before it.
#[test]
fn psn_queue_matches_reference_scan() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::substream(0x9E4, case);
        let len = 1 + rng.next_index(99);
        let psns: Vec<u32> = (0..len).map(|_| rng.next_below(200) as u32).collect();
        let epsn = rng.next_below(200) as u32;
        let mut q = PsnQueue::with_capacity(128);
        for &p in &psns {
            q.push(p);
        }
        // Reference: scan the same list.
        let e = (epsn & 0xFF) as u8;
        let greater = |x: u8| (1..=127).contains(&x.wrapping_sub(e));
        let reference = psns.iter().map(|&p| (p & 0xFF) as u8).find(|&b| greater(b));
        let reference_saw_epsn = psns
            .iter()
            .map(|&p| (p & 0xFF) as u8)
            .take_while(|&b| !greater(b))
            .any(|b| b == e);
        let out = q.scan_for_tpsn(epsn);
        assert_eq!(
            out.tpsn, reference,
            "case {case}: psns={psns:?} epsn={epsn}"
        );
        assert_eq!(out.saw_epsn, reference_saw_epsn, "case {case}");
    }
}

/// extend24 inverts wire_psn for any value within ±2^23 of the
/// reference.
#[test]
fn extend24_round_trips() {
    let mut rng = Xoshiro256::seeded(0x9E5);
    for case in 0..2000 {
        let reference = rng.next_below(1u64 << 40);
        let offset = rng.next_below(1 << 23) as i64 - (1 << 22);
        let truth = reference.saturating_add_signed(offset);
        assert_eq!(
            extend24(wire_psn(truth), reference),
            truth,
            "case {case}: reference={reference} offset={offset}"
        );
    }
}

/// PathMap rewriting moves any flow by exactly the requested XOR
/// delta in path space.
#[test]
fn pathmap_moves_any_flow_exactly() {
    let mut rng = Xoshiro256::seeded(0x9E6);
    for case in 0..500 {
        let src = rng.next_below(10_000) as u32;
        let dst = rng.next_below(10_000) as u32;
        let sport = rng.next_below(u16::MAX as u64) as u16;
        let bits = 1 + rng.next_below(8) as u32;
        let n = 1usize << bits;
        let delta = rng.next_index(n);
        let pm = PathMap::build(n);
        let mask = (n - 1) as u16;
        let t = FiveTuple {
            src,
            dst,
            sport,
            dport: 4791,
            proto: 17,
        };
        let mut t2 = t;
        t2.sport = pm.rewrite(sport, delta);
        let before = ecmp_hash(&t) & mask;
        let after = ecmp_hash(&t2) & mask;
        assert_eq!(
            after,
            before ^ delta as u16,
            "case {case}: src={src} dst={dst} sport={sport} n={n} delta={delta}"
        );
    }
}

/// Posting any mix of message sizes keeps the sender's PSN space
/// contiguous and completions in order.
#[test]
fn sender_psn_space_is_contiguous() {
    use rnic::dcqcn::Dcqcn;
    use rnic::qp::SendQp;
    use rnic::CcConfig;
    for case in 0..CASES {
        let mut rng = Xoshiro256::substream(0x9E7, case);
        let n_msgs = 1 + rng.next_index(19);
        let sizes: Vec<u64> = (0..n_msgs).map(|_| 1 + rng.next_below(9_999)).collect();
        let mut s = SendQp::new(
            QpId(1),
            HostId(0),
            HostId(1),
            4000,
            1000,
            TransportMode::SelectiveRepeat,
            Dcqcn::new(CcConfig::disabled(100_000_000_000), 100_000_000_000),
        );
        let mut expected_first = 0u64;
        let mut last_end = 0u64;
        for (tag, &bytes) in sizes.iter().enumerate() {
            let (first, last) = s.post(bytes, tag as u64);
            assert_eq!(first, expected_first, "case {case}: sizes={sizes:?}");
            let pkts = bytes.div_ceil(1000).max(1);
            assert_eq!(last, first + pkts - 1, "case {case}");
            expected_first = last + 1;
            last_end = last;
        }
        // Send everything, ACK everything, and expect ordered completions.
        let mut now = Nanos::ZERO;
        while s.has_work() {
            now = s.next_allowed.max(now);
            let _ = s.next_packet(now);
        }
        let done = s.on_ack(wire_psn(last_end + 1));
        assert_eq!(
            done,
            (0..sizes.len() as u64).collect::<Vec<_>>(),
            "case {case}"
        );
    }
}
