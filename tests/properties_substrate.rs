//! Property-based tests over the substrate crates (engine, DCQCN,
//! bitmap, schedules, topologies, load balancing).

use proptest::prelude::*;

use rnic::bitmap::OooBitmap;
use rnic::dcqcn::Dcqcn;
use rnic::CcConfig;
use simcore::engine::{Control, Engine};
use simcore::rng::Xoshiro256;
use simcore::time::Nanos;
use themis::collectives::ring::ring_allreduce;
use themis::collectives::schedule::Schedule;
use themis::netsim::lb::{LbPolicy, LbState};
use themis::netsim::packet::Packet;
use themis::netsim::port::{EgressPort, LinkSpec};
use themis::netsim::types::{HostId, NodeId, PortId, QpId};

proptest! {
    /// The engine delivers any multiset of timestamps in non-decreasing
    /// order, with ties in insertion order.
    #[test]
    fn engine_orders_any_schedule(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut e: Engine<(u64, usize)> = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            e.schedule_at(Nanos(t), (t, i));
        }
        let mut seen: Vec<(u64, usize)> = Vec::new();
        e.run_with(|_, ev| {
            seen.push(ev.payload);
            Control::Continue
        });
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// DCQCN's rate stays within [min_rate, line_rate] under any
    /// interleaving of CNPs, NACKs, timers and byte-counter events.
    #[test]
    fn dcqcn_rate_always_bounded(ops in prop::collection::vec(0u8..5, 1..300), seed in 0u64..100) {
        const LINE: u64 = 100_000_000_000;
        let cfg = CcConfig::recommended(LINE);
        let mut d = Dcqcn::new(cfg, LINE);
        let mut rng = Xoshiro256::seeded(seed);
        let mut now = 0u64;
        for op in ops {
            now += rng.next_below(20_000);
            match op {
                0 => {
                    d.on_cnp(Nanos(now));
                }
                1 => {
                    d.on_nack(Nanos(now));
                }
                2 => d.on_increase_timer(),
                3 => d.on_alpha_timer(),
                _ => d.on_bytes_sent(rng.next_below(1 << 22)),
            }
            prop_assert!(
                d.rate_bps() >= cfg.min_rate_bps - 1.0 && d.rate_bps() <= LINE as f64 + 1.0,
                "rate {} out of bounds",
                d.rate_bps()
            );
            prop_assert!((0.0..=1.0).contains(&d.alpha()));
        }
    }

    /// The OOO bitmap advances exactly like a BTreeSet reference model
    /// for any permutation with duplicates.
    #[test]
    fn bitmap_matches_set_reference(
        n in 1usize..150,
        seed in 0u64..500,
        dups in 0usize..20,
    ) {
        let mut order: Vec<u64> = (0..n as u64).collect();
        let mut rng = Xoshiro256::seeded(seed);
        rng.shuffle(&mut order);
        let mut stream = order.clone();
        for _ in 0..dups {
            stream.push(order[rng.next_index(order.len())]);
        }

        let mut bitmap = OooBitmap::new();
        let mut epsn = 0u64;
        let mut reference: std::collections::BTreeSet<u64> = Default::default();
        let mut ref_epsn = 0u64;
        for &psn in &stream {
            // Reference model.
            reference.insert(psn);
            while reference.contains(&ref_epsn) {
                ref_epsn += 1;
            }
            // Model under test (mirrors the receiver's use).
            match psn.cmp(&epsn) {
                std::cmp::Ordering::Equal => epsn += bitmap.advance(),
                std::cmp::Ordering::Greater => {
                    bitmap.set(psn - epsn);
                }
                std::cmp::Ordering::Less => {}
            }
            prop_assert_eq!(epsn, ref_epsn, "after psn {}", psn);
        }
        prop_assert_eq!(epsn, n as u64, "everything eventually delivered");
    }

    /// Ring allreduce schedules are well-formed for any rank count and
    /// buffer size: validated DAG, correct transfer count, uniform
    /// per-rank send volume, and depth 2(N-1)-1.
    #[test]
    fn ring_allreduce_well_formed(n in 2usize..40, total in 1u64..(1 << 30)) {
        let s = ring_allreduce(n, total);
        prop_assert_eq!(s.transfers.len(), 2 * (n - 1) * n);
        let depth = s.validate();
        prop_assert_eq!(depth, 2 * (n - 1) - 1);
        let v0 = s.bytes_sent_by(0);
        for r in 1..n {
            prop_assert_eq!(s.bytes_sent_by(r), v0);
        }
    }

    /// Any schedule's dependencies are topologically executable: playing
    /// transfers in dependency order delivers them all (no orphan deps).
    #[test]
    fn schedules_are_executable(n in 2usize..16, total in 1u64..(1 << 20), kind in 0u8..4) {
        let s: Schedule = match kind {
            0 => ring_allreduce(n, total),
            1 => themis::collectives::alltoall::alltoall(n, total),
            2 => themis::collectives::ring::ring_allgather(n, total),
            _ => themis::collectives::alltoall::incast(n, total),
        };
        let m = s.transfers.len();
        let mut delivered = vec![false; m];
        let mut progress = true;
        let mut remaining = m;
        while progress {
            progress = false;
            for i in 0..m {
                if !delivered[i] && s.transfers[i].deps.iter().all(|&d| delivered[d]) {
                    delivered[i] = true;
                    remaining -= 1;
                    progress = true;
                }
            }
        }
        prop_assert_eq!(remaining, 0, "schedule deadlocked");
    }

    /// Every LB policy returns an in-range uplink for arbitrary packets.
    #[test]
    fn lb_policies_stay_in_range(
        n_uplinks in 1usize..32,
        sport in 0u16..u16::MAX,
        psn in 0u32..(1 << 24),
        policy_id in 0u8..5,
        now_us in 0u64..10_000,
    ) {
        let ports: Vec<EgressPort> = (0..n_uplinks)
            .map(|i| EgressPort::new(NodeId(i as u32), PortId(0), LinkSpec::gbps(100, 1)))
            .collect();
        let uplinks: Vec<usize> = (0..n_uplinks).collect();
        let policy = match policy_id {
            0 => LbPolicy::Ecmp,
            1 => LbPolicy::RandomSpray,
            2 => LbPolicy::AdaptiveRouting,
            3 => LbPolicy::RoundRobin,
            _ => LbPolicy::Flowlet {
                gap: simcore::time::TimeDelta::from_micros(50),
            },
        };
        let mut st = LbState::new(7, 0);
        let pkt = Packet::data(QpId(1), HostId(0), HostId(9), sport, psn, 0, false, 1000, false);
        let pick = policy.select(&pkt, &uplinks, &ports, Nanos::from_micros(now_us), &mut st);
        prop_assert!(pick < n_uplinks);
    }

    /// Two-tier PathMaps preserve the bijection for every legal
    /// (bits1, shift2, bits2) combination.
    #[test]
    fn two_tier_pathmap_bijective(
        bits1 in 1u32..4,
        bits2 in 1u32..4,
        sport in 0u16..u16::MAX,
        src in 0u32..1000,
        dst in 0u32..1000,
    ) {
        use themis::netsim::hash::{ecmp_hash, FiveTuple};
        use themis::themis_core::pathmap::PathMap;
        let shift2 = 8;
        let pm = PathMap::build_two_tier(bits1, shift2, bits2);
        let n = 1usize << (bits1 + bits2);
        let t = FiveTuple { src, dst, sport, dport: 4791, proto: 17 };
        let mut seen = std::collections::HashSet::new();
        for d in 0..n {
            let mut t2 = t;
            t2.sport = pm.rewrite(sport, d);
            let h = ecmp_hash(&t2);
            let stage1 = h & ((1 << bits1) - 1);
            let stage2 = (h >> shift2) & ((1 << bits2) - 1);
            seen.insert((stage1, stage2));
        }
        prop_assert_eq!(seen.len(), n, "deltas must reach distinct composite paths");
    }
}
