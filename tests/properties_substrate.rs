//! Randomized property tests over the substrate crates (engine, DCQCN,
//! bitmap, schedules, topologies, load balancing).
//!
//! Formerly proptest-based; now driven by seeded `simcore::rng::Xoshiro256`
//! loops so the workspace builds with no external crates.

use rnic::bitmap::OooBitmap;
use rnic::dcqcn::Dcqcn;
use rnic::CcConfig;
use simcore::engine::{Control, Engine};
use simcore::rng::Xoshiro256;
use simcore::time::Nanos;
use themis::collectives::ring::ring_allreduce;
use themis::collectives::schedule::Schedule;
use themis::netsim::lb::{LbPolicy, LbState};
use themis::netsim::packet::Packet;
use themis::netsim::port::{EgressPort, LinkSpec};
use themis::netsim::types::{HostId, NodeId, PortId, QpId};

const CASES: u64 = 200;

/// The engine delivers any multiset of timestamps in non-decreasing
/// order, with ties in insertion order.
#[test]
fn engine_orders_any_schedule() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::substream(0x5A1, case);
        let len = 1 + rng.next_index(199);
        let times: Vec<u64> = (0..len).map(|_| rng.next_below(10_000)).collect();
        let mut e: Engine<(u64, usize)> = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            e.schedule_at(Nanos(t), (t, i));
        }
        let mut seen: Vec<(u64, usize)> = Vec::new();
        e.run_with(|_, ev| {
            seen.push(ev.payload);
            Control::Continue
        });
        assert_eq!(seen.len(), times.len(), "case {case}");
        for w in seen.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}: time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "case {case}: FIFO tie-break violated");
            }
        }
    }
}

/// DCQCN's rate stays within [min_rate, line_rate] under any
/// interleaving of CNPs, NACKs, timers and byte-counter events.
#[test]
fn dcqcn_rate_always_bounded() {
    const LINE: u64 = 100_000_000_000;
    for case in 0..CASES {
        let mut rng = Xoshiro256::substream(0x5A2, case);
        let cfg = CcConfig::recommended(LINE);
        let mut d = Dcqcn::new(cfg, LINE);
        let n_ops = 1 + rng.next_index(299);
        let mut now = 0u64;
        for _ in 0..n_ops {
            now += rng.next_below(20_000);
            match rng.next_below(5) {
                0 => {
                    d.on_cnp(Nanos(now));
                }
                1 => {
                    d.on_nack(Nanos(now));
                }
                2 => d.on_increase_timer(),
                3 => d.on_alpha_timer(),
                _ => d.on_bytes_sent(rng.next_below(1 << 22)),
            }
            assert!(
                d.rate_bps() >= cfg.min_rate_bps - 1.0 && d.rate_bps() <= LINE as f64 + 1.0,
                "case {case}: rate {} out of bounds",
                d.rate_bps()
            );
            assert!((0.0..=1.0).contains(&d.alpha()), "case {case}");
        }
    }
}

/// The OOO bitmap advances exactly like a BTreeSet reference model
/// for any permutation with duplicates.
#[test]
fn bitmap_matches_set_reference() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::substream(0x5A3, case);
        let n = 1 + rng.next_index(149);
        let dups = rng.next_index(20);
        let mut order: Vec<u64> = (0..n as u64).collect();
        rng.shuffle(&mut order);
        let mut stream = order.clone();
        for _ in 0..dups {
            stream.push(order[rng.next_index(order.len())]);
        }

        let mut bitmap = OooBitmap::new();
        let mut epsn = 0u64;
        let mut reference: std::collections::BTreeSet<u64> = Default::default();
        let mut ref_epsn = 0u64;
        for &psn in &stream {
            // Reference model.
            reference.insert(psn);
            while reference.contains(&ref_epsn) {
                ref_epsn += 1;
            }
            // Model under test (mirrors the receiver's use).
            match psn.cmp(&epsn) {
                std::cmp::Ordering::Equal => epsn += bitmap.advance(),
                std::cmp::Ordering::Greater => {
                    bitmap.set(psn - epsn);
                }
                std::cmp::Ordering::Less => {}
            }
            assert_eq!(epsn, ref_epsn, "case {case}: after psn {psn}");
        }
        assert_eq!(
            epsn, n as u64,
            "case {case}: everything eventually delivered"
        );
    }
}

/// Ring allreduce schedules are well-formed for any rank count and
/// buffer size: validated DAG, correct transfer count, uniform
/// per-rank send volume, and depth 2(N-1)-1.
#[test]
fn ring_allreduce_well_formed() {
    let mut rng = Xoshiro256::seeded(0x5A4);
    for case in 0..100 {
        let n = 2 + rng.next_index(38);
        let total = 1 + rng.next_below(1 << 30);
        let s = ring_allreduce(n, total);
        assert_eq!(s.transfers.len(), 2 * (n - 1) * n, "case {case}: n={n}");
        let depth = s.validate();
        assert_eq!(depth, 2 * (n - 1) - 1, "case {case}");
        let v0 = s.bytes_sent_by(0);
        for r in 1..n {
            assert_eq!(s.bytes_sent_by(r), v0, "case {case}: rank {r}");
        }
    }
}

/// Any schedule's dependencies are topologically executable: playing
/// transfers in dependency order delivers them all (no orphan deps).
#[test]
fn schedules_are_executable() {
    let mut rng = Xoshiro256::seeded(0x5A5);
    for case in 0..100 {
        let n = 2 + rng.next_index(14);
        let total = 1 + rng.next_below(1 << 20);
        let kind = rng.next_below(4) as u8;
        let s: Schedule = match kind {
            0 => ring_allreduce(n, total),
            1 => themis::collectives::alltoall::alltoall(n, total),
            2 => themis::collectives::ring::ring_allgather(n, total),
            _ => themis::collectives::alltoall::incast(n, total),
        };
        let m = s.transfers.len();
        let mut delivered = vec![false; m];
        let mut progress = true;
        let mut remaining = m;
        while progress {
            progress = false;
            for i in 0..m {
                if !delivered[i] && s.transfers[i].deps.iter().all(|&d| delivered[d]) {
                    delivered[i] = true;
                    remaining -= 1;
                    progress = true;
                }
            }
        }
        assert_eq!(remaining, 0, "case {case}: kind {kind} n={n} deadlocked");
    }
}

/// Every LB policy returns an in-range uplink for arbitrary packets.
#[test]
fn lb_policies_stay_in_range() {
    let mut rng = Xoshiro256::seeded(0x5A6);
    for case in 0..500 {
        let n_uplinks = 1 + rng.next_index(31);
        let sport = rng.next_below(u16::MAX as u64) as u16;
        let psn = rng.next_below(1 << 24) as u32;
        let now_us = rng.next_below(10_000);
        let ports: Vec<EgressPort> = (0..n_uplinks)
            .map(|i| EgressPort::new(NodeId(i as u32), PortId(0), LinkSpec::gbps(100, 1)))
            .collect();
        let uplinks: Vec<usize> = (0..n_uplinks).collect();
        let policy = match rng.next_below(5) {
            0 => LbPolicy::Ecmp,
            1 => LbPolicy::RandomSpray,
            2 => LbPolicy::AdaptiveRouting,
            3 => LbPolicy::RoundRobin,
            _ => LbPolicy::Flowlet {
                gap: simcore::time::TimeDelta::from_micros(50),
            },
        };
        let mut st = LbState::new(7, 0);
        let pkt = Packet::data(
            QpId(1),
            HostId(0),
            HostId(9),
            sport,
            psn,
            0,
            false,
            1000,
            false,
        );
        let pick = policy.select(&pkt, &uplinks, &ports, Nanos::from_micros(now_us), &mut st);
        assert!(pick < n_uplinks, "case {case}: {policy:?} picked {pick}");
    }
}

/// Two-tier PathMaps preserve the bijection for every legal
/// (bits1, shift2, bits2) combination.
#[test]
fn two_tier_pathmap_bijective() {
    use themis::netsim::hash::{ecmp_hash, FiveTuple};
    use themis::themis_core::pathmap::PathMap;
    let mut rng = Xoshiro256::seeded(0x5A7);
    for case in 0..100 {
        let bits1 = 1 + rng.next_below(3) as u32;
        let bits2 = 1 + rng.next_below(3) as u32;
        let sport = rng.next_below(u16::MAX as u64) as u16;
        let src = rng.next_below(1000) as u32;
        let dst = rng.next_below(1000) as u32;
        let shift2 = 8;
        let pm = PathMap::build_two_tier(bits1, shift2, bits2);
        let n = 1usize << (bits1 + bits2);
        let t = FiveTuple {
            src,
            dst,
            sport,
            dport: 4791,
            proto: 17,
        };
        let mut seen = std::collections::HashSet::new();
        for d in 0..n {
            let mut t2 = t;
            t2.sport = pm.rewrite(sport, d);
            let h = ecmp_hash(&t2);
            let stage1 = h & ((1 << bits1) - 1);
            let stage2 = (h >> shift2) & ((1 << bits2) - 1);
            seen.insert((stage1, stage2));
        }
        assert_eq!(
            seen.len(),
            n,
            "case {case}: bits1={bits1} bits2={bits2} deltas must reach distinct composite paths"
        );
    }
}
