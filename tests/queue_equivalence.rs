//! The timer-wheel `EventQueue` must be observationally identical to a
//! plain `(time, seq)`-ordered binary heap: same pop order, including
//! FIFO tie-breaks, under arbitrary interleavings of pushes and pops.
//!
//! This is the replay-safety contract of the substrate: swapping the
//! queue implementation must not change a single event's delivery order,
//! or every seeded experiment in the repo silently changes results.

use simcore::event::EventQueue;
use simcore::rng::Xoshiro256;
use simcore::time::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference model: a max-heap of `Reverse((time, seq))`.
#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    next_seq: u64,
}

impl RefQueue {
    fn push(&mut self, at: u64, payload: u64) {
        self.heap.push(Reverse((at, self.next_seq, payload)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap
            .pop()
            .map(|Reverse((at, _, payload))| (at, payload))
    }
}

/// Drive both queues through the same randomized schedule and assert
/// every pop agrees. Time distributions mix three regimes the wheel
/// handles differently: same-bucket ties, near-future (in-page), and
/// far-future (overflow-heap) events.
#[test]
fn wheel_matches_reference_heap_under_interleaving() {
    const CASES: u64 = 150;
    for case in 0..CASES {
        let mut rng = Xoshiro256::substream(0x3B0E, case);
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut reference = RefQueue::default();
        let ops = 50 + rng.next_index(500);
        let mut now = 0u64; // lower bound for pushes, as the engine enforces
        let mut payload = 0u64;
        for _ in 0..ops {
            // 60% push, 40% pop — queues grow, then drain below.
            if rng.next_below(10) < 6 {
                // Mix of offsets: bucket-local (0..256), page-local
                // (..2 ms), and beyond-page (..200 ms); plus exact ties.
                let offset = match rng.next_below(4) {
                    0 => 0,
                    1 => rng.next_below(256),
                    2 => rng.next_below(2_000_000),
                    _ => rng.next_below(200_000_000),
                };
                let at = now + offset;
                wheel.push(Nanos(at), payload);
                reference.push(at, payload);
                payload += 1;
            } else {
                let got = wheel.pop().map(|s| (s.at.as_nanos(), s.payload));
                let want = reference.pop();
                assert_eq!(got, want, "case {case}: pop mismatch");
                if let Some((t, _)) = got {
                    now = t;
                }
            }
            assert_eq!(wheel.len(), reference.heap.len(), "case {case}");
            assert_eq!(
                wheel.peek_time().map(Nanos::as_nanos),
                reference.heap.peek().map(|Reverse((t, _, _))| *t),
                "case {case}: peek mismatch"
            );
        }
        // Drain completely: the tail must agree too.
        loop {
            let got = wheel.pop().map(|s| (s.at.as_nanos(), s.payload));
            let want = reference.pop();
            assert_eq!(got, want, "case {case}: drain mismatch");
            if got.is_none() {
                break;
            }
        }
    }
}

/// Heavy tie load: thousands of events at a handful of timestamps must
/// come out in exact insertion order per timestamp.
#[test]
fn massive_ties_pop_in_insertion_order() {
    let mut rng = Xoshiro256::seeded(0x71E5);
    let times: Vec<u64> = (0..8).map(|_| rng.next_below(5_000_000)).collect();
    let mut wheel: EventQueue<(u64, u64)> = EventQueue::new();
    let mut reference = RefQueue::default();
    for i in 0..4_000u64 {
        let t = times[rng.next_index(times.len())];
        wheel.push(Nanos(t), (t, i));
        reference.push(t, i);
    }
    while let Some(s) = wheel.pop() {
        let (rt, rp) = reference.pop().expect("same length");
        assert_eq!((s.at.as_nanos(), s.payload.1), (rt, rp));
        assert_eq!(s.at.as_nanos(), s.payload.0);
    }
    assert!(reference.pop().is_none());
}
