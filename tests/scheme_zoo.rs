//! Scheme-zoo contracts: every pluggable scheme — including the
//! sender-driven baselines REPS, Eunomia, and Sprinklers — must be a
//! first-class citizen of the substrate. That means (a) bit-identical
//! telemetry between the serial and sharded engines for any seed,
//! (b) clean oracle audits under a standard fault plan, and (c) the
//! documented `scheme.*` counter namespace actually populated by the
//! mechanism the scheme claims to implement (see SCHEMES.md and the
//! per-scheme metrics contract in EXPERIMENTS.md).

use themis::harness::faults::{Fault, FaultEvent, FaultPlan};
use themis::harness::oracle::{self, OracleConfig};
use themis::harness::{
    run_collective_with_faults, run_point_to_point, Collective, ExperimentConfig, ExperimentResult,
    Scheme,
};
use themis::simcore::time::Nanos;

/// Serialize one run's telemetry, minus the intentionally-divergent
/// `run.shards` execution-config echo (same convention as the
/// parallel-equivalence suite).
fn telemetry_json(label: &str, r: &ExperimentResult) -> String {
    let mut report = telemetry::Report::new();
    report.add_run(label, r.telemetry.clone());
    report
        .to_json()
        .lines()
        .filter(|l| !l.contains("\"run.shards\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Read an integer counter out of the serialized telemetry document.
fn counter(r: &ExperimentResult, name: &str) -> Option<u64> {
    let json = telemetry_json("probe", r);
    let needle = format!("\"{name}\":");
    json.lines().find(|l| l.contains(&needle)).map(|l| {
        l.split(':')
            .nth(1)
            .expect("counter line has a value")
            .trim()
            .trim_end_matches(',')
            .parse()
            .expect("counter value is an integer")
    })
}

/// Every scheme in the registry — the paper's own variants AND the
/// three external baselines — must produce byte-identical telemetry
/// under the serial and sharded engines, across several seeds. This is
/// the contract that makes cross-scheme sweeps trustworthy: a scheme
/// whose results depended on shard count could silently win or lose a
/// comparison for engine reasons.
#[test]
fn every_scheme_is_bit_identical_serial_vs_sharded() {
    for &scheme in Scheme::ALL.iter() {
        for seed in [11u64, 12, 13, 14] {
            let mut cfg = ExperimentConfig::motivation_small(scheme, seed);
            cfg.shards = 1;
            let serial = run_point_to_point(&cfg, 256 << 10);
            cfg.shards = 2;
            let sharded = run_point_to_point(&cfg, 256 << 10);
            let label = format!("{}/seed{}", scheme.label(), seed);
            assert!(
                serial.all_messages_completed(),
                "{label}: serial run did not complete"
            );
            assert_eq!(
                serial.tail_ct, sharded.tail_ct,
                "{label}: completion time diverged"
            );
            assert_eq!(
                telemetry_json(&label, &serial),
                telemetry_json(&label, &sharded),
                "{label}: telemetry JSON diverged between engines"
            );
        }
    }
}

/// The standard fault plan for auditing a new scheme: a lossy uplink
/// episode (random loss, so retransmission logic is exercised) that
/// clears before the end of the run.
fn standard_plan() -> FaultPlan {
    FaultPlan {
        events: vec![
            FaultEvent {
                at: Nanos::from_micros(20),
                fault: Fault::UplinkLoss {
                    leaf: 0,
                    uplink: 1,
                    rate_ppm: 20_000,
                },
            },
            FaultEvent {
                at: Nanos::from_micros(220),
                fault: Fault::UplinkLossClear { leaf: 0, uplink: 1 },
            },
        ],
    }
}

/// REPS, Eunomia, and Sprinklers must complete a ring under the
/// standard lossy-uplink plan and pass the protocol-invariant oracle —
/// conservation, ordering, and NACK bookkeeping all hold even though
/// their entropy/reaction behavior differs from the commodity default.
#[test]
fn new_baselines_pass_the_oracle_under_the_standard_fault_plan() {
    for scheme in [Scheme::Reps, Scheme::Eunomia, Scheme::Sprinklers] {
        let cfg = ExperimentConfig::motivation_small(scheme, 7);
        let (r, cluster) =
            run_collective_with_faults(&cfg, Collective::RingOnce, 1 << 20, &standard_plan());
        assert!(
            r.all_messages_completed(),
            "{}: ring must survive the lossy episode",
            scheme.label()
        );
        // Random loss can destroy ACKs/NACKs, so the RTO bound is off —
        // the remaining invariants (conservation, ordered delivery,
        // NACK dedup) must all hold.
        let mut ocfg = OracleConfig::for_scheme(scheme).without_rto_bound();
        ocfg.quiesced = r.sim_end < cfg.horizon;
        oracle::assert_conformant(&cluster, &ocfg);
    }
}

/// The `scheme.*` namespace is a documented contract: each scheme's
/// characteristic counters must exist in telemetry and reflect the
/// mechanism actually firing.
#[test]
fn scheme_counters_reflect_each_mechanism() {
    // REPS: ACK-echoed entropies get recycled for later sends.
    let cfg = ExperimentConfig::motivation_small(Scheme::Reps, 3);
    let r = run_point_to_point(&cfg, 1 << 20);
    assert!(r.all_messages_completed());
    let recycled = counter(&r, "scheme.reps.recycled_sends").expect("REPS counters exported");
    let fresh = counter(&r, "scheme.reps.fresh_sends").unwrap();
    assert!(recycled > 0, "a 1 MiB flow must recycle some entropies");
    assert!(fresh > 0, "the pool starts empty, so early sends are fresh");

    // Sprinklers: several variable-size stripes over a 1 MiB flow.
    let cfg = ExperimentConfig::motivation_small(Scheme::Sprinklers, 3);
    let r = run_point_to_point(&cfg, 1 << 20);
    assert!(r.all_messages_completed());
    let stripes = counter(&r, "scheme.sprinklers.stripes_started").expect("counters exported");
    assert!(
        stripes > 1,
        "1 MiB must span multiple stripes, got {stripes}"
    );

    // Eunomia: spraying reorders, but small gaps are held back rather
    // than NACKed eagerly.
    let cfg = ExperimentConfig::motivation_small(Scheme::Eunomia, 3);
    let r = run_point_to_point(&cfg, 1 << 20);
    assert!(r.all_messages_completed());
    let held = counter(&r, "scheme.eunomia.nacks_held").expect("counters exported");
    assert!(held > 0, "spray-induced gaps must be patiently held");

    // Schemes outside the zoo additions don't pollute the namespace.
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 3);
    let r = run_point_to_point(&cfg, 256 << 10);
    assert_eq!(counter(&r, "scheme.reps.recycled_sends"), None);
    assert_eq!(counter(&r, "scheme.eunomia.nacks_held"), None);
}

/// The fat-tree leg of the cross-scheme sweep: each new baseline
/// completes on the k=4 Clos (the k=16 version of this run is the
/// `fig5 --fat-tree` deliverable; the small radix keeps the unit suite
/// fast) and stays bit-identical across engines there too.
#[test]
fn new_baselines_run_on_the_fat_tree_bit_identically() {
    use themis::harness::run_fat_tree_rings;
    use themis::netsim::fat_tree::FatTreeConfig;
    use themis::rnic::NicConfig;

    for scheme in [Scheme::Reps, Scheme::Eunomia, Scheme::Sprinklers] {
        let fabric = FatTreeConfig::small(4);
        let nic = NicConfig::nic_sr(fabric.host_link.bandwidth_bps);
        let run = |shards: usize| {
            run_fat_tree_rings(
                &fabric,
                nic,
                scheme,
                5,
                shards,
                2,
                64 << 10,
                Nanos::from_secs(2),
            )
            .0
        };
        let serial = run(1);
        let sharded = run(2);
        let label = format!("fattree/{}", scheme.label());
        assert!(serial.all_messages_completed(), "{label}: did not complete");
        assert_eq!(
            telemetry_json(&label, &serial),
            telemetry_json(&label, &sharded),
            "{label}: fat-tree telemetry diverged between engines"
        );
    }
}
