//! Multi-QP striping and control-packet priority, end to end.
//!
//! * Striping: one logical Allreduce channel spread over 4 QPs per rank
//!   pair (how NCCL-style libraries actually use RNICs, and where the
//!   paper's N_QP = 100-per-NIC sizing comes from). Themis state is
//!   per-QP, so filtering must keep working per stripe.
//! * Control priority: ACK/NACK/CNP in a strict-priority class shortens
//!   the feedback loops; the fabric must behave identically in the
//!   success metrics.
//! * A k=8 fat-tree (128 hosts, 16 composite paths) exercises the
//!   two-stage PathMap at a larger radix.

use themis::collectives::driver::{setup_collective_striped, Driver, QpAllocator, START_TOKEN};
use themis::collectives::ring::{ring_allreduce, ring_once};
use themis::harness::{build_cluster, build_fat_tree_cluster, ExperimentConfig, Scheme};
use themis::netsim::event::Event;
use themis::netsim::fat_tree::FatTreeConfig;
use themis::netsim::topology::LeafSpineConfig;
use themis::netsim::types::HostId;
use themis::rnic::NicConfig;
use themis::simcore::time::Nanos;

#[test]
fn striped_allreduce_under_themis_stays_clean() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 53);
    let mut cluster = build_cluster(&cfg.fabric, cfg.nic, cfg.scheme);
    let evens: Vec<HostId> = (0..4).map(|i| HostId(i * 2)).collect();
    let mut alloc = QpAllocator::new(29);
    let mut driver = Driver::new();
    let spec = setup_collective_striped(
        &mut cluster.world,
        cluster.driver,
        &evens,
        ring_allreduce(4, 4 << 20),
        4, // stripes
        &mut alloc,
    );
    driver.add_instance(spec);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(cfg.horizon);

    let d: &Driver = cluster.world.get(cluster.driver).unwrap();
    assert!(d.all_complete(), "striped allreduce completes");
    // 4 ordered pairs per direction x 4 stripes = 16 send QPs... the
    // ring uses pairs (i -> i+1): 4 pairs x 4 stripes = 16 QPs.
    assert_eq!(alloc.allocated(), 16);
    let nics = themis::harness::experiment::aggregate_nics(&cluster);
    assert_eq!(nics.retx_packets, 0, "per-stripe Themis state stays clean");
    // Striping quarters each QP's packet rate, so reordering may or may
    // not occur; whatever NACKs the receivers emitted must all have been
    // filtered (none reached a sender).
    assert_eq!(nics.nacks_received, 0);
    assert_eq!(
        cluster.themis_stats().nacks_blocked,
        nics.nacks_sent,
        "every generated NACK was blocked"
    );
}

#[test]
fn ctrl_priority_composes_with_themis() {
    let bytes = 4 << 20;
    let mut results = Vec::new();
    for ctrl_priority in [false, true] {
        let fabric = LeafSpineConfig {
            ctrl_priority,
            ..LeafSpineConfig::motivation()
        };
        let cfg = ExperimentConfig {
            nic: NicConfig::nic_sr(fabric.host_link.bandwidth_bps),
            fabric,
            scheme: Scheme::Themis,
            seed: 53,
            horizon: Nanos::from_secs(2),
            shards: themis::harness::shards_from_env(),
        };
        let r = themis::harness::run_collective(&cfg, themis::harness::Collective::RingOnce, bytes);
        assert!(
            r.all_messages_completed(),
            "ctrl_priority={ctrl_priority}: incomplete"
        );
        assert_eq!(r.nics.retx_packets, 0, "ctrl_priority={ctrl_priority}");
        results.push(r);
    }
    // Same deliveries either way; priority only reorders control packets.
    assert_eq!(
        results[0].nics.bytes_delivered,
        results[1].nics.bytes_delivered
    );
}

#[test]
fn k8_fat_tree_interpod_ring_under_themis() {
    let fabric = FatTreeConfig::small(8); // 128 hosts, 16 paths
    let mut cluster = build_fat_tree_cluster(
        &fabric,
        NicConfig::nic_sr(fabric.host_link.bandwidth_bps),
        Scheme::Themis,
    );
    assert_eq!(cluster.n_paths, 16);
    // One host per pod: hosts 0, 16, 32, ...
    let hosts: Vec<HostId> = (0..8).map(|p| HostId(p * 16)).collect();
    let mut alloc = QpAllocator::new(31);
    let mut driver = Driver::new();
    let spec = themis::collectives::driver::setup_collective(
        &mut cluster.world,
        cluster.driver,
        &hosts,
        ring_once(8, 2 << 20),
        &mut alloc,
    );
    driver.add_instance(spec);
    cluster.world.install(cluster.driver, Box::new(driver));
    cluster.world.seed_event(
        Nanos::ZERO,
        cluster.driver,
        Event::Timer { token: START_TOKEN },
    );
    cluster.world.run_until(Nanos::from_secs(2));

    let d: &Driver = cluster.world.get(cluster.driver).unwrap();
    assert!(d.all_complete(), "k=8 inter-pod ring completes");
    let nics = themis::harness::experiment::aggregate_nics(&cluster);
    assert_eq!(nics.retx_packets, 0, "16-path spraying stays clean");
    let agg = cluster.themis_stats();
    assert!(agg.sprayed > 0);
    // 16 cores (last 16 of spines); every one must carry traffic.
    let n_spines_aggs = 8 * 4; // 8 pods x 4 aggs
    for &c in &cluster.spines[n_spines_aggs..] {
        let sw: &themis::netsim::switch::Switch = cluster.world.get(c).unwrap();
        assert!(sw.stats.rx_packets > 0, "idle core under 16-path spray");
    }
}
