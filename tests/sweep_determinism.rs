//! Serial vs parallel sweep runs must be bit-identical.
//!
//! The `SweepRunner` contract: fanning cells over worker threads changes
//! wall-clock time only. Every per-cell metric — completion times, packet
//! counts, Themis counters, even the total event count — must equal the
//! serial run's, because each cell is its own sealed simulation.

use themis_harness::sweep::SweepRunner;
use themis_harness::{run_seed_sweep, Collective, ExperimentConfig, Scheme};

/// Full-metric fingerprint of a result (no wall-clock fields).
fn fingerprints(results: &[themis_harness::ExperimentResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| format!("{},{},{}", r.to_csv_row(), r.events, r.sim_end.as_nanos()))
        .collect()
}

#[test]
fn seed_sweep_parallel_matches_serial() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 0);
    let seeds: Vec<u64> = (1..=8).collect();
    let bytes = 96 * 1024; // small: 8 cells finish quickly even in debug
    let serial = run_seed_sweep(
        &cfg,
        Collective::RingOnce,
        bytes,
        &seeds,
        SweepRunner::new(1),
    );
    let parallel = run_seed_sweep(
        &cfg,
        Collective::RingOnce,
        bytes,
        &seeds,
        SweepRunner::new(4),
    );
    assert_eq!(serial.len(), 8);
    assert_eq!(
        fingerprints(&serial),
        fingerprints(&parallel),
        "parallel sweep must be bit-identical to serial"
    );
    // Different seeds must actually differ somewhere, otherwise the
    // comparison above proves nothing about per-cell isolation.
    let fp = fingerprints(&serial);
    let unique: std::collections::HashSet<&String> = fp.iter().collect();
    assert!(
        unique.len() >= 2,
        "all seeds produced identical metrics; fingerprint is too weak"
    );
}

#[test]
fn parallel_run_repeats_exactly() {
    // Two parallel runs with the same worker count must also agree —
    // no hidden dependence on thread scheduling.
    let cfg = ExperimentConfig::motivation_small(Scheme::RandomSpray, 0);
    let seeds = [3u64, 5, 7, 11];
    let bytes = 64 * 1024;
    let a = run_seed_sweep(
        &cfg,
        Collective::RingOnce,
        bytes,
        &seeds,
        SweepRunner::new(4),
    );
    let b = run_seed_sweep(
        &cfg,
        Collective::RingOnce,
        bytes,
        &seeds,
        SweepRunner::new(2),
    );
    assert_eq!(fingerprints(&a), fingerprints(&b));
}

#[test]
fn scheme_cells_stay_isolated_across_workers() {
    // Different schemes in flight on different workers must not bleed
    // state into each other: each parallel cell equals its solo run.
    let schemes = [Scheme::Ecmp, Scheme::RandomSpray, Scheme::Themis];
    let bytes = 64 * 1024;
    let cells: Vec<ExperimentConfig> = schemes
        .iter()
        .map(|&s| ExperimentConfig::motivation_small(s, 9))
        .collect();
    let together = SweepRunner::new(3).run(&cells, |cfg| {
        themis_harness::run_collective(cfg, Collective::RingOnce, bytes)
    });
    for (cfg, parallel_result) in cells.iter().zip(&together) {
        let solo = themis_harness::run_collective(cfg, Collective::RingOnce, bytes);
        assert_eq!(
            fingerprints(std::slice::from_ref(&solo)),
            fingerprints(std::slice::from_ref(parallel_result)),
            "{} diverged when run alongside other schemes",
            cfg.scheme.label()
        );
    }
}
