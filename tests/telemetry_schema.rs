//! Telemetry JSON schema contract (see EXPERIMENTS.md "Telemetry
//! output" and DESIGN.md "Observability").
//!
//! Three guarantees pinned here:
//!
//! 1. **Golden file** — a synthetic report covering every schema
//!    feature (counters, gauges, histogram binning + clamping, event
//!    ring with overwrite, string escaping, float formatting)
//!    serializes to the exact committed bytes
//!    (`tests/golden/telemetry_schema_v1.json`). Schema changes must
//!    bump `telemetry::SCHEMA_VERSION` and regenerate the golden:
//!    `THEMIS_REGEN_GOLDEN=1 cargo test --test telemetry_schema`.
//! 2. **Byte stability** — the same seeded experiment serializes to
//!    identical bytes on repeated runs.
//! 3. **The metrics contract** — a Themis run emits the documented
//!    names, and the live counters equal the end-of-run `agg.*`
//!    exports they mirror.

use themis::harness::{run_point_to_point, ExperimentConfig, Scheme};
use themis::telemetry::{EventKind, Report, Sink};

/// A hand-built report exercising every serializer feature.
fn synthetic_report() -> Report {
    let sink = Sink::new(4); // tiny ring so overwrite is exercised
    let packets = sink.counter("fabric.packets");
    let drops = sink.counter("fabric.drops.buffer");
    let rate = sink.gauge("run.goodput_gbps");
    let odd = sink.gauge("gauge.with \"quotes\"\\backslash");
    let lat = sink.time_hist("collective.msg_latency", 1_000, 4);

    sink.clock().set(500);
    sink.add(packets, 7);
    sink.inc(drops);
    sink.set_gauge(rate, 98.5);
    sink.set_gauge(odd, 2.0); // integral-valued float keeps its ".0"
    sink.observe(lat, 10);
    sink.observe(lat, 30);
    sink.event(EventKind::PacketDrop, 3, 41);

    sink.clock().set(2_700);
    sink.observe(lat, 20);
    sink.event(EventKind::NackIssued, 3, 42);
    sink.event(EventKind::NackBlocked, 3, 42);
    sink.event(EventKind::NackCompensated, 3, 42);

    sink.clock().set(99_000);
    sink.observe(lat, 1_000_000); // clamped into the last bin
    sink.event(EventKind::RtoFired, 9, 0); // overwrites the oldest event

    let mut report = Report::new();
    report.add_run("synthetic", sink.snapshot());
    report.add_run("empty", themis::telemetry::RunReport::new());
    report
}

#[test]
fn golden_schema_v1() {
    let json = synthetic_report().to_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/telemetry_schema_v1.json"
    );
    if std::env::var("THEMIS_REGEN_GOLDEN").is_ok() {
        std::fs::write(path, &json).expect("regenerate golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        json, golden,
        "telemetry JSON diverged from the committed schema golden; if the \
         schema changed intentionally, bump telemetry::SCHEMA_VERSION and \
         regenerate with THEMIS_REGEN_GOLDEN=1"
    );
}

#[test]
fn report_is_byte_stable_across_runs() {
    let render = || {
        let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 7);
        let r = run_point_to_point(&cfg, 2 << 20);
        let mut rep = Report::new();
        rep.add_run("p2p", r.telemetry);
        rep.to_json()
    };
    assert_eq!(render(), render(), "same seed must serialize identically");
}

#[test]
fn themis_run_emits_the_documented_contract() {
    let cfg = ExperimentConfig::motivation_small(Scheme::Themis, 7);
    let r = run_point_to_point(&cfg, 2 << 20);
    let t = &r.telemetry;

    // Required names from the EXPERIMENTS.md contract table.
    for name in [
        "themis.sprayed",
        "themis.nacks.blocked",
        "themis.nacks.forwarded_valid",
        "themis.nacks.forwarded_unknown",
        "themis.nacks.compensated",
        "rnic.nacks_issued",
        "rnic.rto_fired",
        "rnic.rate_cuts",
        "fabric.drops.buffer",
        "fabric.ecn_marked",
        "fabric.hook_blocked",
        "run.events",
        "run.sim_end_ns",
        "run.shards",
    ] {
        assert!(t.counter(name).is_some(), "missing counter {name}");
    }
    assert_eq!(
        t.counter("run.shards"),
        Some(1),
        "serial run echoes shards=1"
    );
    for name in ["run.goodput_gbps", "run.tail_ct_us", "run.retx_ratio"] {
        assert!(t.gauge(name).is_some(), "missing gauge {name}");
    }
    assert!(
        t.hists.iter().any(|(n, _)| n == "collective.msg_latency"),
        "missing msg-latency histogram"
    );

    // The live counters must equal the end-of-run stat aggregates they
    // mirror — the instrumentation may not drift from the stats structs.
    for (live, agg) in [
        ("themis.sprayed", "agg.themis.sprayed"),
        ("themis.nacks.blocked", "agg.themis.nacks_blocked"),
        (
            "themis.nacks.forwarded_valid",
            "agg.themis.nacks_forwarded_valid",
        ),
        ("themis.nacks.compensated", "agg.themis.compensations"),
        ("rnic.rto_fired", "agg.nic.rto_fires"),
        ("rnic.nacks_issued", "agg.nic.nacks_sent"),
        ("fabric.ecn_marked", "agg.fabric.ecn_marked"),
        ("fabric.hook_blocked", "agg.fabric.hook_blocked"),
    ] {
        assert_eq!(
            t.counter(live),
            t.counter(agg),
            "live counter {live} diverged from aggregate {agg}"
        );
    }

    // The motivation p2p run reorders: spraying is active and invalid
    // NACKs are blocked, which is the paper's core claim.
    assert!(t.counter("themis.sprayed").unwrap() > 0);
    assert!(t.counter("themis.nacks.blocked").unwrap() > 0);
    assert_eq!(
        t.events.total as usize,
        t.events.ring.len(),
        "this small run must not overflow the 4096-event ring"
    );
    assert!(t
        .events
        .ring
        .iter()
        .any(|e| e.kind == "nack_blocked" || e.kind == "nack_issued"));
}
